//! Hot-path behavior-preservation tests.
//!
//! The hot-path overhaul (monomorphized retire sinks, the L0 TLB in
//! `GuestMem`, and the predecoded guest-block cache) must not change any
//! architecturally observable result. These tests pin that down:
//!
//! - running a workload with a [`NullSink`] and with a [`CountingSink`]
//!   (and with a [`DynSink`]-wrapped trait object) yields identical final
//!   guest state, retired-instruction counts and [`TolStats`];
//! - self-modifying code is observed by the predecoded interpreter on
//!   both the co-designed and the authoritative component (the run is
//!   validated between them), even though both replay cached blocks.

use darco::{Machine, MachineEvent};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::reg::{Addr, Cond, Width};
use darco_guest::{Asm, Gpr, Insn};
use darco_host::{CountingSink, DynSink, InsnSink, NullSink};
use darco_tol::TolConfig;
use darco_workloads::{benchmarks, build};

/// Runs a benchmark to completion through the full machine with the given
/// sink, validating at a fine period, and returns the machine.
fn run_with<S: InsnSink>(cfg: TolConfig, sink: &mut S) -> Machine {
    let profile = benchmarks()[0].profile.clone().scaled(1, 64);
    let program = build(&profile);
    let mut m = Machine::new(cfg, &program);
    loop {
        let target = m.insns() + 10_000;
        match m.run_to(target, true, sink).expect("run") {
            MachineEvent::Reached => continue,
            MachineEvent::Ended { .. } => break,
            MachineEvent::GuestFault(f) => panic!("guest fault: {f}"),
        }
    }
    m
}

fn assert_same_outcome(a: &Machine, b: &Machine) {
    assert_eq!(a.state.gprs(), b.state.gprs());
    assert_eq!(a.state.fprs(), b.state.fprs());
    assert_eq!(a.state.flags, b.state.flags);
    assert_eq!(a.state.eip, b.state.eip);
    // The wall-clock fields are nondeterministic; everything else must
    // match bit for bit.
    let timeless = |s: &darco_tol::TolStats| {
        let mut s = *s;
        s.verify_nanos = 0;
        s.translate_nanos = 0;
        s
    };
    assert_eq!(timeless(&a.tol.stats), timeless(&b.tol.stats), "TolStats must be identical");
    assert_eq!(a.tol.total_guest(), b.tol.total_guest());
    assert_eq!(a.tol.mode_split(), b.tol.mode_split());
    assert_eq!(a.xcomp.insns, b.xcomp.insns);
    assert_eq!(a.state.mem.page_count(), b.state.mem.page_count());
    assert_eq!(a.state.mem.first_difference(&b.state.mem), None);
    assert_eq!(a.xcomp.output, b.xcomp.output);
}

/// The monomorphized hot path must be sink-agnostic: a no-op sink, a
/// counting sink, and a trait-object sink behind [`DynSink`] all see the
/// exact same execution.
#[test]
fn null_counting_and_dyn_sinks_agree() {
    let cfg = TolConfig::default();
    let mut null = NullSink;
    let a = run_with(cfg.clone(), &mut null);
    let mut counting = CountingSink::default();
    let b = run_with(cfg.clone(), &mut counting);
    let mut dyn_inner = CountingSink::default();
    let c = run_with(cfg, &mut DynSink(&mut dyn_inner));

    assert_same_outcome(&a, &b);
    assert_same_outcome(&a, &c);
    assert!(counting.total > 0, "the counting sink saw retires");
    assert!(counting.loads > 0 && counting.branches > 0);
    // The dyn-wrapped sink observes the identical stream.
    assert_eq!(counting.total, dyn_inner.total);
    assert_eq!(counting.loads, dyn_inner.loads);
    assert_eq!(counting.stores, dyn_inner.stores);
    assert_eq!(counting.branches, dyn_inner.branches);
    assert_eq!(counting.taken, dyn_inner.taken);
}

/// Builds a program that patches one of its own instructions: an `inc
/// eax` in a loop body is overwritten with `dec eax` after the first
/// iteration, so the final EAX distinguishes stale-decode (2) from
/// correct re-decode (0).
fn smc_program() -> darco_guest::GuestProgram {
    let inc = {
        let mut b = Vec::new();
        darco_guest::encode(&Insn::Unary { op: darco_guest::UnaryOp::Inc, dst: Gpr::Eax }, &mut b);
        b
    };
    let dec = {
        let mut b = Vec::new();
        darco_guest::encode(&Insn::Unary { op: darco_guest::UnaryOp::Dec, dst: Gpr::Eax }, &mut b);
        b
    };
    assert_eq!(inc.len(), dec.len(), "patch must preserve instruction length");

    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Eax, 0);
    a.mov_ri(Gpr::Edx, 0);
    let top = a.here();
    let target = a.addr(); // address of the patchable instruction
    a.inc(Gpr::Eax);
    // Patch the instruction for the next iteration.
    a.mov_ri(Gpr::Ebx, target as i32);
    for (i, &byte) in dec.iter().enumerate() {
        a.mov_ri(Gpr::Ecx, byte as i32);
        a.store(Addr { base: Some(Gpr::Ebx), index: None, scale: darco_guest::Scale::S1, disp: i as i32 }, Gpr::Ecx, Width::B);
    }
    a.inc(Gpr::Edx);
    a.cmp_ri(Gpr::Edx, 2);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    a.into_program()
}

/// Self-modifying code through the full machine: both the co-designed
/// interpreter and the authoritative component replay predecoded blocks,
/// and both must observe the patched bytes (the run validates the two
/// components against each other at the end).
#[test]
fn self_modifying_code_is_redecoded() {
    let p = smc_program();
    let mut m = Machine::new(TolConfig::default(), &p);
    let mut sink = NullSink;
    loop {
        match m.run_to(m.insns() + 64, true, &mut sink).expect("run") {
            MachineEvent::Reached => continue,
            MachineEvent::Ended { .. } => break,
            MachineEvent::GuestFault(f) => panic!("guest fault: {f}"),
        }
    }
    // Iteration 1 increments (eax 0 -> 1), iteration 2 runs the patched
    // `dec` (eax 1 -> 0). A stale decode would leave eax == 2.
    assert_eq!(m.state.gpr(Gpr::Eax), 0, "patched instruction must be re-decoded");
    assert_eq!(m.state.gpr(Gpr::Edx), 2);
    assert_eq!(m.xcomp.state.gpr(Gpr::Eax), 0, "authoritative side agrees");
}
