#!/usr/bin/env bash
# CI gate for the DARCO reproduction.
#
#   build  — release build of every crate (including the bench binaries)
#   test   — full workspace test suite
#   lint   — clippy with -D warnings on the crates the hot path touches
#   speed  — one tiny benchmark run as a smoke test of the speed harness
#
# Everything runs offline; no network access is required.

set -euo pipefail
cd "$(dirname "$0")/.."

# Crates on (or feeding) the hot path: warnings there are errors.
LINT_CRATES=(darco-guest darco-host darco-tol darco-xcomp darco darco-timing
    darco-workloads darco-bench darco-repro)

echo "==> build (release, whole workspace)"
cargo build --release --workspace -q

echo "==> test (whole workspace)"
cargo test --workspace -q

echo "==> lint (clippy -D warnings on hot-path crates)"
lint_args=()
for c in "${LINT_CRATES[@]}"; do
    lint_args+=(-p "$c")
done
cargo clippy "${lint_args[@]}" --all-targets -q -- -D warnings

# The harness writes BENCH_hotpath.json into the cwd; run from a scratch
# directory so a tiny smoke run never clobbers the committed measurement.
echo "==> speed smoke (tiny scale)"
speed_bin="$PWD/target/release/speed"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && "$speed_bin" --scale 1/512)

echo "CI OK"
