#!/usr/bin/env bash
# CI gate for the DARCO reproduction.
#
#   build  — release build of every crate (including the bench binaries)
#   test   — full workspace test suite
#   lint   — clippy with -D warnings on the whole workspace
#   verify — darco-lint static verification over every workload
#   semantic — darco-lint --semantic (symbolic translation validation)
#            over every workload on both backends, plus the
#            verify_overhead budget gate and committed BENCH_verify.json
#   speed  — one tiny benchmark run as a smoke test of the speed harness
#   trace  — darco-run/darco-lint trace + flight exporters, validated with
#            the repo's own JSON reader (darco-trace-check)
#   obs    — the committed BENCH_obs.json must pass the observability
#            overhead gate (traced <= 5%, disabled tracer <= 1% vs
#            baseline, live streaming <= 2%, sampling profiler <= 2%)
#   engine — the committed BENCH_engine.json must pass its overhead gate
#   backend — native-JIT-vs-emulator identity gate over every workload
#   jit    — jit_speed smoke run + committed BENCH_jit.json sanity check
#   fleet  — a six-job campaign with one deliberately panicking and one
#            deliberately hanging job: both must be isolated (failed
#            statuses + flight dump, sibling jobs unharmed) and the runner
#            must exit 1 for the partial failure
#   checkpoint — mid-run checkpoint/restore round trips (darco-run and
#            a fleet --state-dir / --resume cycle)
#   profiler — darco-run --profile on two workloads: non-empty collapsed
#            stacks whose region frames resolve in the JSON heatmap
#   live   — darco-fleet run --live with a one-shot darco-top --once
#            attach (required dashboard fields) + a --replay re-render
#            of the recorded stream
#   timing — two-speed timing gate: the accelerated (cycle-annotated)
#            path must match the detailed model bit-for-bit on whole
#            runs; the committed BENCH_timing.json must pass its stated
#            error bound and cost-reduction floors; sampling artifacts
#            must be byte-identical at any --jobs
#   fuzz   — darco-fuzz smoke: a clean seeded campaign must find zero
#            divergences, grow coverage past the seed corpus and be
#            byte-deterministic across worker counts; a campaign with an
#            injected translator bug must find it and emit a minimized,
#            replayable reproducer + flight dump
#
# Each stage is timed; a per-stage summary prints at the end.
# Everything runs offline; no network access is required.

set -euo pipefail
cd "$(dirname "$0")/.."

TIMINGS=()
CUR_STAGE=""
STAGE_T0=0
stage() {
    CUR_STAGE="$1"
    STAGE_T0=$(date +%s%3N)
    echo "==> $1"
}
stage_done() {
    TIMINGS+=("$(printf '%8d ms  %s' $(( $(date +%s%3N) - STAGE_T0 )) "$CUR_STAGE")")
}

stage "build (release, whole workspace)"
cargo build --release --workspace -q
stage_done

stage "test (whole workspace)"
cargo test --workspace -q
stage_done

stage "lint (clippy -D warnings, whole workspace)"
cargo clippy --workspace --all-targets -q -- -D warnings
stage_done

# Every translation the suite produces must pass the static verifier
# (exit 1 on any finding or machine error).
stage "verify (darco-lint over all workloads)"
./target/release/darco-lint all --scale 1/512
stage_done

smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT

# Semantic translation validation (DESIGN.md §13): symbolic per-pass
# equivalence proofs over every translation of every workload, on both
# backends (native adds the machine-code verifier on top; on hosts
# without a JIT the second sweep transparently re-runs the emulator).
# Then the overhead gate: verify_overhead exits 1 if the structural
# share busts 10% or the semantic share busts 15% of translation time;
# the committed BENCH_verify.json must carry passing gate fields.
stage "semantic verify (darco-lint --semantic, both backends + overhead gate)"
./target/release/darco-lint all --scale 1/512 --semantic
./target/release/darco-lint all --scale 1/512 --semantic --backend native
verify_bin="$PWD/target/release/verify_overhead"
(cd "$smoke_dir" && "$verify_bin" --scale 1/64 --repeat 3 > /dev/null)
test "$(grep -o '"within_budget":true' BENCH_verify.json | wc -l)" -eq 2
stage_done

# The harness writes BENCH_hotpath.json into the cwd; run from a scratch
# directory so a tiny smoke run never clobbers the committed measurement.
stage "speed smoke (tiny scale)"
speed_bin="$PWD/target/release/speed"
(cd "$smoke_dir" && "$speed_bin" --scale 1/512)
stage_done

# The exporters must produce artifacts the repo's own JSON reader accepts:
# a Chrome trace + metrics registry from darco-run, a multi-workload trace
# from darco-lint's machine-readable findings log.
stage "trace smoke (exporters + darco-trace-check)"
./target/release/darco-run kernel:crc32 \
    --trace="$smoke_dir/trace.json" --metrics="$smoke_dir/metrics.json" \
    --flight="$smoke_dir/flight.json" > /dev/null
test ! -e "$smoke_dir/flight.json"  # clean run: no flight dump
./target/release/darco-lint kernel:dot kernel:crc32 \
    --trace="$smoke_dir/lint-trace.json" > /dev/null
./target/release/darco-trace-check \
    "$smoke_dir/trace.json" "$smoke_dir/metrics.json" "$smoke_dir/lint-trace.json"
stage_done

stage "obs overhead gate (committed BENCH_obs.json)"
./target/release/darco-trace-check --obs-gate BENCH_obs.json
stage_done

stage "engine overhead gate (committed BENCH_engine.json)"
./target/release/engine_overhead --gate BENCH_engine.json
stage_done

# Native-backend identity gate (DESIGN.md §12): every workload under
# both backends, every architectural outcome bit-identical. Passes
# trivially (with a message) on hosts without a native JIT.
stage "backend identity gate (native JIT vs emulator, all workloads)"
./target/release/backend_identity
stage_done

# The JIT speed harness writes BENCH_jit.json into the cwd; smoke-run it
# tiny, single-shot and ungated from scratch space (honest gate numbers
# need --scale 1/1 on a quiet host), then sanity-check the committed
# measurement carries the gate fields.
stage "jit speed smoke (tiny scale) + committed BENCH_jit.json"
jit_bin="$PWD/target/release/jit_speed"
(cd "$smoke_dir" && "$jit_bin" --scale 1/512 --repeat 1 > /dev/null)
test -s "$smoke_dir/BENCH_jit.json"
grep -q '"bench":"jit"' BENCH_jit.json
grep -q '"native_sw_speedup"' BENCH_jit.json
grep -q '"gate_min_speedup_vs_emu_sb"' BENCH_jit.json
stage_done

# Fault isolation: fault:panic panics inside the worker, fault:spin never
# terminates on its own (huge bbm_threshold pins it in the interpreter;
# the instruction budget is only a backstop well past the timeout). The
# pool must contain both, the other four jobs must finish normally, and
# the partial failure must surface as exit code 1.
stage "fleet smoke (campaign with injected panic + timeout)"
cat > "$smoke_dir/campaign.json" <<'EOF'
{
  "name": "ci-smoke",
  "defaults": {"scale": "1/64"},
  "jobs": [
    {"workload": "kernel:dot"},
    {"workload": "kernel:crc32"},
    {"workload": "fault:panic"},
    {"workload": "fault:spin", "timeout_ms": 250,
     "config": {"max_guest_insns": 200000000, "tol": {"bbm_threshold": 1000000000}}},
    {"workload": "kernel:quicksort"},
    {"workload": "kernel:search", "kind": "lint"}
  ]
}
EOF
fleet_rc=0
./target/release/darco-fleet run "$smoke_dir/campaign.json" --jobs 2 \
    --out "$smoke_dir/merged.json" --flight-dir "$smoke_dir/flights" || fleet_rc=$?
test "$fleet_rc" -eq 1                                      # partial failure -> exit 1
grep -q '"status":"panicked"' "$smoke_dir/merged.json"      # panic isolated, not fatal
grep -q '"status":"timeout"'  "$smoke_dir/merged.json"      # hang cut off by the timeout
test "$(grep -o '"status":"ok"' "$smoke_dir/merged.json" | wc -l)" -eq 4  # siblings unharmed
test -s "$smoke_dir/flights/job-2.flight.json"              # panicked job dumped flight state
stage_done

# Checkpoints (DESIGN.md §11). First darco-run: checkpoint mid-run,
# restore into a fresh process, and require the report (minus the
# wall-clock MIPS figure) to be byte-identical to the checkpointing
# run's on two workloads. Then the fleet: a zero timeout fires at the
# first quantum boundary, so every job must checkpoint to --state-dir
# (partial failure -> exit 1), and a --resume without the timeout must
# finish every job from its snapshot with exit 0.
stage "checkpoint smoke (darco-run round trip + fleet resume)"
strip_wall() { sed 's/ *([0-9.]* MIPS wall-clock)//' "$1"; }
for wl in kernel:crc32 kernel:nbody; do
    snap="$smoke_dir/${wl#kernel:}.snap"
    ./target/release/darco-run "$wl" --checkpoint-at 100000 \
        --checkpoint-to "$snap" > "$smoke_dir/ck.txt" 2> /dev/null
    test -s "$snap"
    ./target/release/darco-run "$wl" --restore "$snap" \
        > "$smoke_dir/res.txt" 2> /dev/null
    diff <(strip_wall "$smoke_dir/ck.txt") <(strip_wall "$smoke_dir/res.txt")
done
cat > "$smoke_dir/ckpt-campaign.json" <<'EOF'
{
  "name": "ci-ckpt",
  "defaults": {"scale": "1/4"},
  "jobs": [
    {"workload": "kernel:dot", "timeout_ms": 0},
    {"workload": "kernel:crc32", "timeout_ms": 0}
  ]
}
EOF
sed 's#, "timeout_ms": 0##' "$smoke_dir/ckpt-campaign.json" \
    > "$smoke_dir/ckpt-resume.json"
ckpt_rc=0
./target/release/darco-fleet run "$smoke_dir/ckpt-campaign.json" --jobs 2 \
    --quantum 3000 --out "$smoke_dir/ckpt1.json" \
    --state-dir "$smoke_dir/ckpt-state" > /dev/null 2>&1 || ckpt_rc=$?
test "$ckpt_rc" -eq 1                                       # timed out -> partial failure
test -s "$smoke_dir/ckpt-state/job-0.snap"                  # both jobs left snapshots
test -s "$smoke_dir/ckpt-state/job-1.snap"
./target/release/darco-fleet run "$smoke_dir/ckpt-resume.json" --jobs 2 \
    --quantum 3000 --out "$smoke_dir/ckpt2.json" \
    --resume "$smoke_dir/ckpt-state" > /dev/null 2>&1       # resume completes -> exit 0
test "$(grep -o '"status":"ok"' "$smoke_dir/ckpt2.json" | wc -l)" -eq 2
stage_done

# Sampling profiler: collapsed stacks must be non-empty and carry the
# workload;MODE;site frame shape, and every promoted-region frame in the
# folded output must resolve to a region entry in the JSON heatmap.
stage "profiler smoke (darco-run --profile on two workloads)"
for wl in kernel:matmul kernel:crc32; do
    folded="$smoke_dir/${wl#kernel:}.folded"
    ./target/release/darco-run "$wl" --scale 1/4 --profile "$folded" \
        --profile-every 2000 --json > "$smoke_dir/prof.json"
    test -s "$folded"
    grep -qE '^[^;]+;(IM|BBM|SBM);' "$folded"       # collapsed-stack frames
    grep -q '"profile"' "$smoke_dir/prof.json"      # heatmap rides the report
    ./target/release/darco-trace-check "$smoke_dir/prof.json" > /dev/null
    for region in $(grep -oE 'region_0x[0-9a-f]+' "$folded" | sort -u); do
        grep -q "\"entry\":\"${region#region_}\"" "$smoke_dir/prof.json" \
            || { echo "folded frame $region missing from heatmap"; exit 1; }
    done
done
stage_done

# Live telemetry: a dashboard attached over TCP must catch up, render one
# frame with the required fields, and leave a recording that --replay
# re-renders deterministically. darco-top starts first (it retries the
# connect), the fleet run provides the stream.
stage "live-stream smoke (fleet --live + darco-top --once attach)"
cat > "$smoke_dir/live-campaign.json" <<'EOF'
{
  "name": "ci-live",
  "defaults": {"scale": "1/4"},
  "jobs": [
    {"workload": "kernel:dot"},
    {"workload": "kernel:crc32"},
    {"workload": "kernel:quicksort"}
  ]
}
EOF
./target/release/darco-top 127.0.0.1:7391 --once \
    --record "$smoke_dir/live.jsonl" --width 80 > "$smoke_dir/top.txt" &
top_pid=$!
./target/release/darco-fleet run "$smoke_dir/live-campaign.json" --jobs 2 \
    --live 127.0.0.1:7391 --out "$smoke_dir/live-merged.json" > /dev/null 2>&1
wait "$top_pid"                                     # --once attach succeeded
grep -q '"ev":"sync"' "$smoke_dir/live.jsonl"       # catch-up completed
grep -q '"ev":"campaign"' "$smoke_dir/live.jsonl"   # campaign metadata streamed
grep -q 'darco-top — ci-live' "$smoke_dir/top.txt"  # frame names the campaign
grep -q 'jobs 3  workers 2' "$smoke_dir/top.txt"    # ...and its shape
grep -q 'MIPS' "$smoke_dir/top.txt"                 # aggregate throughput line
grep -q 'mode residency' "$smoke_dir/top.txt"       # IM/BBM/SBM split line
grep -q 'workers  w0:' "$smoke_dir/top.txt"         # per-worker utilization
./target/release/darco-top --replay "$smoke_dir/live.jsonl" --width 80 \
    > "$smoke_dir/top-replay.txt"
grep -q 'darco-top — ci-live' "$smoke_dir/top-replay.txt"
# The merged artifact is still the deterministic one (streaming may not
# perturb it): byte-compare against a streaming-off run.
./target/release/darco-fleet run "$smoke_dir/live-campaign.json" --jobs 2 \
    --out "$smoke_dir/nolive-merged.json" > /dev/null 2>&1
cmp "$smoke_dir/live-merged.json" "$smoke_dir/nolive-merged.json"
stage_done

# Two-speed timing + checkpoint sampling (DESIGN.md §16). Three gates:
# (1) the accelerated timing path must reproduce the detailed in-order
# model's cycle count bit-for-bit over whole runs while actually
# memoizing (the escape hatch alone would pass trivially); (2) the
# committed BENCH_timing.json must stay inside its own stated error
# bound with the accuracy and cost-reduction floors the docs claim;
# (3) the sampling campaign's deterministic artifact may not depend on
# the worker count.
stage "timing (fast==full gate + sampled-CPI bounds + determinism)"
for w in kernel:quicksort 429.mcf; do
    ./target/release/darco-run "$w" --scale 1/64 --timing --timing-mode full \
        --json > "$smoke_dir/timing-full.json"
    ./target/release/darco-run "$w" --scale 1/64 --timing --timing-mode fast \
        --json > "$smoke_dir/timing-fast.json"
    full_cycles=$(grep -o '"cycles":[0-9]*' "$smoke_dir/timing-full.json" | head -1 | cut -d: -f2)
    fast_cycles=$(grep -o '"cycles":[0-9]*' "$smoke_dir/timing-fast.json" | head -1 | cut -d: -f2)
    test "$full_cycles" = "$fast_cycles"         # accelerated path is exact
    memo=$(grep -o '"memo_events":[0-9]*' "$smoke_dir/timing-fast.json" | cut -d: -f2)
    test "$memo" -gt 0                           # ...and actually took the fast path
done
read -r bt_mean bt_max bt_bound bt_red bt_speedup <<EOF
$(tr ',' '\n' < BENCH_timing.json | awk -F: '
    /"mean_err_pct"/ {m=$2} /"max_err_pct"/ {x=$2}
    /"stated_error_bound_pct"/ {b=$2} /"mean_cost_reduction"/ {r=$2}
    /"mean_speedup"/ {s=$2}
    END {print m, x, b, r, s}')
EOF
awk -v x="$bt_max" -v b="$bt_bound" 'BEGIN{exit !(x <= b)}'   # inside stated bound
awk -v m="$bt_mean" 'BEGIN{exit !(m <= 6.0)}'                 # mean error floor
awk -v r="$bt_red" 'BEGIN{exit !(r >= 10.0)}'                 # paper-style cost reduction
awk -v s="$bt_speedup" 'BEGIN{exit !(s >= 1.5)}'              # recorded wall-clock floor
./target/release/timing_sampling --scale 1/8 --jobs 4 \
    --out "$smoke_dir/bt8-4.json" --det "$smoke_dir/bt8-det4.json" > /dev/null
./target/release/timing_sampling --scale 1/8 --jobs 1 \
    --out "$smoke_dir/bt8-1.json" --det "$smoke_dir/bt8-det1.json" > /dev/null
cmp "$smoke_dir/bt8-det4.json" "$smoke_dir/bt8-det1.json"     # --jobs never changes results
stage_done

# Coverage-guided differential fuzzing (DESIGN.md §15). Clean build: a
# short seeded campaign must find zero divergences, report strictly more
# coverage edges than the seed corpus alone, and produce a byte-identical
# artifact at any worker count. Injected build: the campaign must find
# the planted optimizer bug (exit 1) and emit a minimized reproducer that
# replays to the same divergence — and to a clean verdict once the
# injection is removed.
stage "fuzz smoke (clean campaign + injected-bug detection)"
./target/release/darco-fuzz run --seed 7 --iters 120 --jobs 4 \
    --out "$smoke_dir/fuzz-clean" > "$smoke_dir/fuzz-clean.json"
grep -q '"divergences":0' "$smoke_dir/fuzz-clean.json"
./target/release/darco-fuzz run --seed 7 --iters 6 --jobs 4 \
    --out "$smoke_dir/fuzz-seed" > "$smoke_dir/fuzz-seed.json"
seed_edges=$(grep -o '"cov_edges":[0-9]*' "$smoke_dir/fuzz-seed.json" | cut -d: -f2)
full_edges=$(grep -o '"cov_edges":[0-9]*' "$smoke_dir/fuzz-clean.json" | cut -d: -f2)
test "$full_edges" -gt "$seed_edges"        # evolution found new coverage
./target/release/darco-fuzz run --seed 7 --iters 120 --jobs 1 \
    --out "$smoke_dir/fuzz-clean1" > /dev/null
cmp "$smoke_dir/fuzz-clean/fuzz-artifact.json" \
    "$smoke_dir/fuzz-clean1/fuzz-artifact.json"  # --jobs never changes results
fuzz_rc=0
./target/release/darco-fuzz run --seed 7 --iters 60 --jobs 4 --inject bad-fold \
    --out "$smoke_dir/fuzz-inj" > "$smoke_dir/fuzz-inj.json" 2> /dev/null || fuzz_rc=$?
test "$fuzz_rc" -eq 1                        # injected bug found -> exit 1
repro=$(ls "$smoke_dir"/fuzz-inj/repro-*.json | grep -v '\.flight\.json$' | head -1)
test -s "$repro"                             # minimized reproducer written
ls "$smoke_dir"/fuzz-inj/repro-*.flight.json > /dev/null  # ...with a flight dump
replay_rc=0
./target/release/darco-fuzz replay "$repro" --inject bad-fold \
    > /dev/null || replay_rc=$?
test "$replay_rc" -eq 1                      # reproducer still diverges under the bug
./target/release/darco-fuzz replay "$repro" > /dev/null  # ...and is clean without it
stage_done

echo
echo "stage timings:"
for t in "${TIMINGS[@]}"; do
    echo "  $t"
done
echo "CI OK"
