#!/usr/bin/env bash
# CI gate for the DARCO reproduction.
#
#   build  — release build of every crate (including the bench binaries)
#   test   — full workspace test suite
#   lint   — clippy with -D warnings on the whole workspace
#   verify — darco-lint static verification over every workload
#   speed  — one tiny benchmark run as a smoke test of the speed harness
#   trace  — darco-run/darco-lint trace + flight exporters, validated with
#            the repo's own JSON reader (darco-trace-check)
#   obs    — the committed BENCH_obs.json must pass the tracing-overhead
#            gate (traced <= 5%, disabled tracer <= 1% vs baseline)
#
# Everything runs offline; no network access is required.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release, whole workspace)"
cargo build --release --workspace -q

echo "==> test (whole workspace)"
cargo test --workspace -q

echo "==> lint (clippy -D warnings, whole workspace)"
cargo clippy --workspace --all-targets -q -- -D warnings

# Every translation the suite produces must pass the static verifier
# (exit 1 on any finding or machine error).
echo "==> verify (darco-lint over all workloads)"
./target/release/darco-lint all --scale 1/512

# The harness writes BENCH_hotpath.json into the cwd; run from a scratch
# directory so a tiny smoke run never clobbers the committed measurement.
echo "==> speed smoke (tiny scale)"
speed_bin="$PWD/target/release/speed"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && "$speed_bin" --scale 1/512)

# The exporters must produce artifacts the repo's own JSON reader accepts:
# a Chrome trace + metrics registry from darco-run, a multi-workload trace
# from darco-lint's machine-readable findings log.
echo "==> trace smoke (exporters + darco-trace-check)"
./target/release/darco-run kernel:crc32 \
    --trace="$smoke_dir/trace.json" --metrics="$smoke_dir/metrics.json" \
    --flight="$smoke_dir/flight.json" > /dev/null
test ! -e "$smoke_dir/flight.json"  # clean run: no flight dump
./target/release/darco-lint kernel:dot kernel:crc32 \
    --trace="$smoke_dir/lint-trace.json" > /dev/null
./target/release/darco-trace-check \
    "$smoke_dir/trace.json" "$smoke_dir/metrics.json" "$smoke_dir/lint-trace.json"

echo "==> obs overhead gate (committed BENCH_obs.json)"
./target/release/darco-trace-check --obs-gate BENCH_obs.json

echo "CI OK"
